(* Process-wide registry of named, labelled counters, gauges and
   log-bucketed histograms.

   Hot-path updates land in per-domain shards (slot = domain id mod
   [shard_count], each slot an atomic so id collisions stay correct),
   so Exec.Pool workers record without lock contention; a snapshot
   merges the shards.  Every update first reads one [enabled] flag, so
   a disabled registry costs a load and a branch per call site — and
   instrumentation only counts, it never touches the simulated machine,
   so simulation results are bit-identical either way. *)

let shard_count = 16
let shard_index () = (Domain.self () :> int) land (shard_count - 1)

let valid_metric_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

let valid_label_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

(* ---- snapshots ----------------------------------------------------- *)

type histogram_sample = {
  buckets : (float * int) list;
      (* (upper bound, cumulative count); the last bound is [infinity] *)
  sum : int;
  count : int;
}

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of histogram_sample

type sample = { labels : (string * string) list; v : value }

type family_snapshot = {
  fname : string;
  fhelp : string;
  ftype : string;
  samples : sample list;
}

type snapshot = family_snapshot list

(* ---- registry ------------------------------------------------------ *)

type t = {
  mutable on : bool;
  mutex : Mutex.t;
  mutable names : string list;
  mutable collectors : (unit -> family_snapshot) list;  (* newest first *)
}

let create () =
  { on = false; mutex = Mutex.create (); names = []; collectors = [] }

let default = create ()
let set_enabled t b = t.on <- b
let enabled t = t.on

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let register t ~name ~labels collect =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Telemetry.Metrics: bad metric name %S" name);
  List.iter
    (fun l ->
      if not (valid_label_name l) then
        invalid_arg
          (Printf.sprintf "Telemetry.Metrics: bad label name %S on %s" l name))
    labels;
  locked t.mutex (fun () ->
      if List.mem name t.names then
        invalid_arg
          (Printf.sprintf "Telemetry.Metrics: duplicate metric %S" name);
      t.names <- name :: t.names;
      t.collectors <- collect :: t.collectors)

let snapshot t =
  let collectors = locked t.mutex (fun () -> List.rev t.collectors) in
  List.map (fun collect -> collect ()) collectors

(* Children are stored newest-first under the registry mutex; [labels]
   is called once per allocator/consumer instance, never on the per-event
   path, so a linear scan is fine. *)
let find_or_add_child reg children label_names vals make =
  if List.length vals <> List.length label_names then
    invalid_arg
      (Printf.sprintf "Telemetry.Metrics: expected %d label values, got %d"
         (List.length label_names) (List.length vals));
  locked reg.mutex (fun () ->
      match List.assoc_opt vals !children with
      | Some h -> h
      | None ->
          let h = make () in
          children := (vals, h) :: !children;
          h)

let child_samples label_names children sample_of =
  List.rev_map
    (fun (vals, h) -> { labels = List.combine label_names vals; v = sample_of h })
    children

(* ---- counters ------------------------------------------------------ *)

module Counter = struct
  type h = { reg : t; cells : int Atomic.t array }

  type family = {
    freg : t;
    label_names : string list;
    children : (string list * h) list ref;
  }

  let merged h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.cells

  let family ?(registry = default) ~name ~help ?(labels = []) () =
    let fam = { freg = registry; label_names = labels; children = ref [] } in
    register registry ~name ~labels (fun () ->
        { fname = name;
          fhelp = help;
          ftype = "counter";
          samples =
            child_samples labels !(fam.children) (fun h -> Counter_v (merged h))
        });
    fam

  let labels fam vals =
    find_or_add_child fam.freg fam.children fam.label_names vals (fun () ->
        { reg = fam.freg;
          cells = Array.init shard_count (fun _ -> Atomic.make 0) })

  let inc ?(by = 1) h =
    if by < 0 then invalid_arg "Telemetry.Metrics.Counter.inc: by must be >= 0";
    if h.reg.on then
      ignore (Atomic.fetch_and_add h.cells.(shard_index ()) by)

  let value = merged
end

(* ---- gauges -------------------------------------------------------- *)

module Gauge = struct
  (* [set] is last-writer-wins, which does not merge across shards, so a
     gauge is one atomic rather than a sharded cell.  Gauges record
     coarse state (worker counts, file sizes), not per-event traffic. *)
  type h = { reg : t; cell : int Atomic.t }

  type family = {
    freg : t;
    label_names : string list;
    children : (string list * h) list ref;
  }

  let family ?(registry = default) ~name ~help ?(labels = []) () =
    let fam = { freg = registry; label_names = labels; children = ref [] } in
    register registry ~name ~labels (fun () ->
        { fname = name;
          fhelp = help;
          ftype = "gauge";
          samples =
            child_samples labels !(fam.children) (fun h ->
                Gauge_v (Atomic.get h.cell)) });
    fam

  let labels fam vals =
    find_or_add_child fam.freg fam.children fam.label_names vals (fun () ->
        { reg = fam.freg; cell = Atomic.make 0 })

  let set h v = if h.reg.on then Atomic.set h.cell v
  let add h v = if h.reg.on then ignore (Atomic.fetch_and_add h.cell v)
  let value h = Atomic.get h.cell
end

(* ---- histograms ---------------------------------------------------- *)

module Histogram = struct
  (* Log-bucketed: bucket i counts observations in (2^(i-1), 2^i] (the
     first bucket holds everything <= 1); one overflow bucket past
     2^29.  Shard slot layout: buckets 0..30, then sum, then count. *)
  let finite_buckets = 30
  let sum_slot = finite_buckets + 1
  let count_slot = finite_buckets + 2
  let slots = finite_buckets + 3

  let bucket_of v =
    if v <= 1 then 0
    else begin
      let rec go i bound =
        if i = finite_buckets || v <= bound then i else go (i + 1) (bound * 2)
      in
      go 1 2
    end

  let bound_of i = if i = finite_buckets then infinity else float_of_int (1 lsl i)

  type h = { reg : t; shards : int Atomic.t array array }

  type family = {
    freg : t;
    label_names : string list;
    children : (string list * h) list ref;
  }

  let merged_slot h slot =
    Array.fold_left (fun acc s -> acc + Atomic.get s.(slot)) 0 h.shards

  let sample_of h =
    let cumulative = ref 0 in
    let buckets =
      List.init (finite_buckets + 1) (fun i ->
          cumulative := !cumulative + merged_slot h i;
          (bound_of i, !cumulative))
    in
    Histogram_v
      { buckets; sum = merged_slot h sum_slot; count = merged_slot h count_slot }

  let family ?(registry = default) ~name ~help ?(labels = []) () =
    let fam = { freg = registry; label_names = labels; children = ref [] } in
    register registry ~name ~labels (fun () ->
        { fname = name;
          fhelp = help;
          ftype = "histogram";
          samples = child_samples labels !(fam.children) sample_of });
    fam

  let labels fam vals =
    find_or_add_child fam.freg fam.children fam.label_names vals (fun () ->
        { reg = fam.freg;
          shards =
            Array.init shard_count (fun _ ->
                Array.init slots (fun _ -> Atomic.make 0)) })

  let observe h v =
    if h.reg.on then begin
      let v = max 0 v in
      let s = h.shards.(shard_index ()) in
      ignore (Atomic.fetch_and_add s.(bucket_of v) 1);
      ignore (Atomic.fetch_and_add s.(sum_slot) v);
      ignore (Atomic.fetch_and_add s.(count_slot) 1)
    end

  let count h = merged_slot h count_slot
  let sum h = merged_slot h sum_slot

  let mean h =
    let n = count h in
    if n = 0 then 0. else float_of_int (sum h) /. float_of_int n

  let quantile h q =
    let q = Float.max 0. (Float.min 1. q) in
    let n = count h in
    if n = 0 then 0.
    else begin
      (* Rank of the wanted observation, then linear interpolation
         inside the log-2 bucket that holds it — the standard
         Prometheus histogram_quantile estimate, so the stats endpoint
         and a scraping dashboard agree on p50/p99. *)
      let rank = q *. float_of_int n in
      let rec go i cumulative =
        if i > finite_buckets then infinity
        else
          let here = merged_slot h i in
          let cum = cumulative + here in
          if float_of_int cum >= rank && here > 0 then
            let hi = bound_of i in
            if i = 0 then hi
            else if hi = infinity then bound_of (i - 1)
            else
              let lo = bound_of (i - 1) in
              lo
              +. (hi -. lo)
                 *. ((rank -. float_of_int cumulative) /. float_of_int here)
          else go (i + 1) cum
      in
      go 0 0
    end
end

(* ---- exporters ----------------------------------------------------- *)

let escape_help s =
  String.concat "\\n" (String.split_on_char '\n' s)

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_bound bound =
  if bound = infinity then "+Inf" else string_of_int (int_of_float bound)

let fmt_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let to_prometheus snap =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" f.fname (escape_help f.fhelp));
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" f.fname f.ftype);
      List.iter
        (fun s ->
          match s.v with
          | Counter_v v | Gauge_v v ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" f.fname (fmt_labels s.labels) v)
          | Histogram_v h ->
              List.iter
                (fun (bound, cumulative) ->
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" f.fname
                       (fmt_labels (s.labels @ [ ("le", fmt_bound bound) ]))
                       cumulative))
                h.buckets;
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %d\n" f.fname (fmt_labels s.labels)
                   h.sum);
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" f.fname (fmt_labels s.labels)
                   h.count))
        f.samples)
    snap;
  Buffer.contents b

let to_json snap =
  let open Metrics.Export in
  let sample_json s =
    let labels = Obj (List.map (fun (k, v) -> (k, String v)) s.labels) in
    match s.v with
    | Counter_v v | Gauge_v v -> Obj [ ("labels", labels); ("value", Int v) ]
    | Histogram_v h ->
        Obj
          [ ("labels", labels);
            ("count", Int h.count);
            ("sum", Int h.sum);
            ( "buckets",
              List
                (List.map
                   (fun (bound, cumulative) ->
                     Obj
                       [ ( "le",
                           if bound = infinity then String "+Inf"
                           else Int (int_of_float bound) );
                         ("count", Int cumulative) ])
                   h.buckets) ) ]
  in
  let family_json f =
    Obj
      [ ("name", String f.fname);
        ("type", String f.ftype);
        ("help", String f.fhelp);
        ("samples", List (List.map sample_json f.samples)) ]
  in
  to_string (Obj [ ("metrics", List (List.map family_json snap)) ])
