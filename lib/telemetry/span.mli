(** Wall-clock spans with a ring-buffered event log and Chrome
    trace-event JSON export (loadable in Perfetto or chrome://tracing).

    One process-wide tracer, disabled by default: {!with_span} then runs
    its thunk directly.  Timestamps come from gettimeofday clamped to be
    non-decreasing process-wide, so they are monotonic even across a
    system clock step.  The ring keeps the most recent [capacity] events
    (default 65536) and counts what it overwrote ({!dropped}).

    Spans are meant for coarse units — grid cells, pool tasks, store
    I/O, experiment renders — never per-reference work. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : ?capacity:int -> unit -> unit
(** Drop every recorded event and size the ring.
    @raise Invalid_argument if [capacity < 1]. *)

val now_us : unit -> float
(** Microseconds since the trace epoch, monotonically non-decreasing.
    Usable for coarse durations even when tracing is disabled. *)

val with_span :
  ?args:(string * string) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f], recording a complete ("X") span
    around it when enabled.  If [f] raises, the span is still recorded
    (with an ["error"] arg) and the exception is re-raised. *)

val instant : ?args:(string * string) list -> cat:string -> string -> unit
(** A zero-duration marker event. *)

val complete :
  ?args:(string * string) list ->
  cat:string -> string -> ts:float -> dur:float -> unit
(** Record a complete ("X") span whose interval was already measured
    (timestamps in {!now_us} microseconds) — for work timed on another
    thread and recorded after the fact, like request stages. *)

val recorded : unit -> int
(** Events currently held in the ring. *)

val dropped : unit -> int
(** Events overwritten because the ring was full. *)

val to_chrome_json : unit -> string
(** The ring contents (oldest first) as one Chrome trace-event JSON
    object: [{"traceEvents": [...], ...}]. *)

val write_chrome : path:string -> unit
(** {!to_chrome_json} to a file. *)
