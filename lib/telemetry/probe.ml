(* Trace-position probes: sink-pipeline taps that turn one simulation's
   event stream into windowed time series (miss-rate evolution, footprint
   growth, reference mix), the paper's "how behaviour evolves over the
   trace" evidence that end-of-run aggregates cannot show. *)

module Series = struct
  type t = {
    columns : string list;
    mutable rows_rev : string list list;
    mutable n : int;
  }

  let create ~columns =
    if columns = [] then invalid_arg "Probe.Series.create: no columns";
    { columns; rows_rev = []; n = 0 }

  let columns t = t.columns
  let length t = t.n

  let add t row =
    if List.length row <> List.length t.columns then
      invalid_arg
        (Printf.sprintf "Probe.Series.add: %d fields for %d columns"
           (List.length row) (List.length t.columns));
    t.rows_rev <- row :: t.rows_rev;
    t.n <- t.n + 1

  let rows t = List.rev t.rows_rev

  let to_csv t =
    String.concat "\n"
      (Metrics.Export.csv_row t.columns
      :: List.rev_map Metrics.Export.csv_row t.rows_rev)
    ^ "\n"

  let write_csv t ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_csv t))
end

module Windows = struct
  type t = {
    every : int;
    f : window:int -> events:int -> unit;
    mutable seen : int;
    mutable last_fire : int;
    mutable fired : int;
  }

  let create ~every ~f =
    if every < 1 then invalid_arg "Probe.Windows.create: every must be >= 1";
    { every; f; seen = 0; last_fire = 0; fired = 0 }

  let fire t =
    t.fired <- t.fired + 1;
    t.last_fire <- t.seen;
    t.f ~window:t.fired ~events:t.seen

  (* Fire at most once per delivery: a batch that crosses a boundary is
     indivisible downstream (fanout hands whole batches to each sibling),
     so sampling mid-batch is not possible anyway.  Windows therefore
     close at the first delivery edge >= [every] events after the last
     close; the callback receives the exact cumulative count.  Place the
     tap last in a fanout so sibling consumers have already absorbed
     everything up to [events] when the callback reads their state. *)
  let sink t =
    Memsim.Sink.make
      ~emit:(fun _ ->
        t.seen <- t.seen + 1;
        if t.seen - t.last_fire >= t.every then fire t)
      ~emit_batch:(fun _ len ->
        t.seen <- t.seen + len;
        if t.seen - t.last_fire >= t.every then fire t)

  let flush t = if t.seen > t.last_fire then fire t

  let events_seen t = t.seen
  let windows_fired t = t.fired
end
