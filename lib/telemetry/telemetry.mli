(** Observability for the whole simulation stack.

    Three subsystems, all zero-cost when disabled (the default):

    - {!Metrics} — a process-wide registry of named, labelled counters,
      gauges and log-bucketed histograms with per-domain shards, exported
      as Prometheus text or JSON;
    - {!Span} — wall-clock spans in a ring buffer, exported as Chrome
      trace-event JSON for Perfetto;
    - {!Probe} — sink-pipeline taps producing trace-position time series
      (windowed miss rates, footprint growth, reference mix);
    - {!Rctx} — request-scoped tracing for the serve layer: per-request
      ids, stage breakdowns, and a bounded slowest-requests table.

    Instrumentation only counts — it never emits trace events, charges
    simulated instructions, or touches simulated memory — so enabling
    telemetry cannot change simulation results, and run artifacts stay
    bit-identical. *)

module Metrics = Tmetrics
module Span = Span
module Probe = Probe
module Rctx = Rctx

val setup_logging :
  ?env:string -> ?default:Logs.level option -> unit -> unit
(** Install the standard [Logs] format reporter and set the level from
    the [env] environment variable (default [LOCLAB_LOG]): one of
    [quiet], [error], [warning], [info], [debug].  An unset or
    unrecognised value falls back to [default] (default: warnings).
    Centralised here so the CLI, the bench harness and the tests all
    configure logging the same way. *)
