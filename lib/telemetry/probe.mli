(** Trace-position probes: taps on a {!Memsim.Sink} pipeline that
    produce windowed time series over the reference stream — the
    "behaviour over trace position" evidence (miss-rate evolution,
    footprint growth, reference mix) that end-of-run aggregates hide.

    A probe only counts; it never emits events or touches the simulated
    machine, so adding or removing probes cannot change simulation
    results. *)

(** An in-memory table with fixed columns, exported as CSV. *)
module Series : sig
  type t

  val create : columns:string list -> t
  (** @raise Invalid_argument on an empty column list. *)

  val add : t -> string list -> unit
  (** Append a row.  @raise Invalid_argument on an arity mismatch. *)

  val columns : t -> string list
  val length : t -> int
  val rows : t -> string list list

  val to_csv : t -> string
  (** Header plus rows, RFC-4180 quoting ({!Metrics.Export.csv_row}). *)

  val write_csv : t -> path:string -> unit
end

(** A window tap: counts the events flowing past and fires a callback
    every [every] events, at which point sibling sinks in the same
    fanout (cache simulators, counters, the page simulator) can be
    sampled for a windowed reading. *)
module Windows : sig
  type t

  val create : every:int -> f:(window:int -> events:int -> unit) -> t
  (** [f ~window ~events] is called with the 1-based window index and
      the exact cumulative event count at the close.  Windows close at
      the first delivery edge at least [every] events after the last
      close — exactly every [every] events under per-event delivery, at
      batch boundaries under batched delivery (a batch is indivisible
      downstream).  @raise Invalid_argument if [every < 1]. *)

  val sink : t -> Memsim.Sink.t
  (** The tap.  Place it {e last} in the fanout so sibling consumers
      have absorbed everything up to [events] when [f] samples them. *)

  val flush : t -> unit
  (** Close the final partial window, if any events arrived since the
      last close. *)

  val events_seen : t -> int
  val windows_fired : t -> int
end
