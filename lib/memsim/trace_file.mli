(** Compact binary trace files.

    The paper's simulators consumed traces directly from the
    instrumented program "without storing large trace files"; this
    module provides the complementary mode — persist a reference trace
    once, replay it into any set of sinks later — so expensive workload
    runs can be re-simulated repeatedly under new cache/memory
    configurations.

    Encoding: a magic header, then one flags byte per event (kind,
    source, small sizes inline) followed by the zigzag-LEB128 delta of
    the address from the previous event.  Address locality makes
    typical traces ~2–3 bytes per reference.

    Decode failures name the byte offset of the offending event's flags
    byte and dump the byte in hex (e.g. ["Trace_file: byte 17 (flags
    0x3a): truncated event"]), so corruption in a multi-MB trace can be
    located without bisecting the file. *)

val magic : string
(** File header ("LOCLAB1\n"). *)

val record_to_file : string -> (Sink.t -> 'a) -> 'a
(** [record_to_file path f] runs [f] with a sink that appends every
    event it receives to [path], closing the file afterwards (also on
    exceptions). *)

val record_to_string : (Sink.t -> unit) -> string
(** In-memory [record_to_file]: runs the callback with a recording sink
    and returns the complete encoded trace (magic header included). *)

val replay : in_channel -> Sink.t -> int
(** Streams a recorded trace into a sink as packed batches; returns the
    number of events.
    @raise Failure on a corrupt or foreign file, with the byte offset
    and flags byte of the damaged event in the message. *)

val replay_string : string -> Sink.t -> int
(** [replay] over an in-memory encoded trace (as produced by
    {!record_to_string}, or a file slurped whole). *)

val replay_file : string -> Sink.t -> int
