type t = {
  emit : Event.t -> unit;
  emit_batch : Event.t array -> int -> unit;
  emit_packed_batch : Event.Batch.t -> unit;
}

let batch_of_emit f buf len =
  for i = 0 to len - 1 do
    f (Array.unsafe_get buf i)
  done

let packed_of_emit f (b : Event.Batch.t) =
  for i = 0 to b.len - 1 do
    f (Event.Batch.get b i)
  done

let dummy_event : Event.t =
  { kind = Event.Read; source = Event.App; addr = 0; size = 1 }

let null =
  { emit = ignore; emit_batch = (fun _ _ -> ()); emit_packed_batch = ignore }

let of_fn f =
  { emit = f; emit_batch = batch_of_emit f; emit_packed_batch = packed_of_emit f }

let make ~emit ~emit_batch =
  (* Compatibility constructor for consumers that only know boxed
     batches: a packed delivery is decoded into a (reused) boxed scratch
     and handed over as ONE emit_batch call, so batch-grain consumers
     (probes, batchers) observe the same delivery boundaries either
     way. *)
  let scratch = ref [||] in
  { emit;
    emit_batch;
    emit_packed_batch =
      (fun b ->
        let len = b.Event.Batch.len in
        if len > 0 then begin
          if Array.length !scratch < len then
            scratch := Array.make (max len 256) dummy_event;
          let out = !scratch in
          for i = 0 to len - 1 do
            Array.unsafe_set out i (Event.Batch.get b i)
          done;
          emit_batch out len
        end);
  }

let make_packed ~emit_packed_batch =
  (* Native-packed consumer: boxed deliveries are packed into a reused
     scratch batch and forwarded as one packed delivery. *)
  let scratch = Event.Batch.create () in
  { emit =
      (fun e ->
        Event.Batch.clear scratch;
        Event.Batch.push_event scratch e;
        emit_packed_batch scratch);
    emit_batch =
      (fun buf len ->
        if len > 0 then begin
          Event.Batch.clear scratch;
          for i = 0 to len - 1 do
            Event.Batch.push_event scratch (Array.unsafe_get buf i)
          done;
          emit_packed_batch scratch
        end);
    emit_packed_batch;
  }

let emit_packed_batch t b = t.emit_packed_batch b

module Compat = struct
  let emit t e = t.emit e
  let emit_batch t buf ~len = t.emit_batch buf len
end

let fanout sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | [ a; b ] ->
      { emit =
          (fun e ->
            a.emit e;
            b.emit e);
        emit_batch =
          (fun buf len ->
            a.emit_batch buf len;
            b.emit_batch buf len);
        emit_packed_batch =
          (fun batch ->
            a.emit_packed_batch batch;
            b.emit_packed_batch batch);
      }
  | sinks ->
      let arr = Array.of_list sinks in
      { emit =
          (fun e ->
            for i = 0 to Array.length arr - 1 do
              arr.(i).emit e
            done);
        emit_batch =
          (fun buf len ->
            for i = 0 to Array.length arr - 1 do
              arr.(i).emit_batch buf len
            done);
        emit_packed_batch =
          (fun batch ->
            for i = 0 to Array.length arr - 1 do
              arr.(i).emit_packed_batch batch
            done);
      }

let filter pred sink =
  (* The batch path must stay a batch path: compact the matching events
     into a scratch buffer (the caller's buffer is shared with sibling
     fanout consumers, so it must not be compacted in place) and forward
     them as one emit_batch call.  The packed path compacts into its own
     packed scratch, so sibling consumers of a shared packed batch can
     never observe the compaction. *)
  let scratch = ref [||] in
  let pscratch = Event.Batch.create () in
  { emit = (fun e -> if pred e then sink.emit e);
    emit_batch =
      (fun buf len ->
        if Array.length !scratch < len then
          scratch := Array.make (max len 256) dummy_event;
        let out = !scratch in
        let n = ref 0 in
        for i = 0 to len - 1 do
          let e = Array.unsafe_get buf i in
          if pred e then begin
            Array.unsafe_set out !n e;
            incr n
          end
        done;
        if !n > 0 then sink.emit_batch out !n);
    emit_packed_batch =
      (fun b ->
        Event.Batch.clear pscratch;
        for i = 0 to b.Event.Batch.len - 1 do
          if pred (Event.Batch.get b i) then
            Event.Batch.push pscratch
              ~addr:(Array.unsafe_get b.Event.Batch.addrs i)
              ~meta:(Array.unsafe_get b.Event.Batch.metas i)
        done;
        if pscratch.Event.Batch.len > 0 then sink.emit_packed_batch pscratch);
  }

module Batcher = struct
  type batcher = {
    buf : Event.t array;
    capacity : int;
    mutable len : int;
    downstream : t;
  }

  let default_capacity = 256

  let create ?(capacity = default_capacity) downstream =
    if capacity < 1 then invalid_arg "Sink.Batcher.create: capacity must be >= 1";
    { buf = Array.make capacity dummy_event; capacity; len = 0; downstream }

  let flush b =
    if b.len > 0 then begin
      b.downstream.emit_batch b.buf b.len;
      b.len <- 0
    end

  let sink b =
    { emit =
        (fun e ->
          Array.unsafe_set b.buf b.len e;
          b.len <- b.len + 1;
          if b.len = b.capacity then flush b);
      emit_batch =
        (* Already-batched input: drain our buffer to keep order, then
           pass the foreign batch through untouched. *)
        (fun buf len ->
          flush b;
          b.downstream.emit_batch buf len);
      emit_packed_batch =
        (fun batch ->
          flush b;
          b.downstream.emit_packed_batch batch);
    }
end

module Counter = struct
  (* Event tallies live in a 6-cell array indexed [ki*3 + si] (ki: 0
     read / 1 write; si: 0 app / 1 malloc / 2 free): classifying an
     event is one read-modify-write on the hot path, totals and
     marginals are summed on demand. *)
  type counter = {
    cells : int array;
    mutable bytes : int;
  }

  let create () = { cells = Array.make 6 0; bytes = 0 }

  let count c (e : Event.t) =
    c.bytes <- c.bytes + e.size;
    let ki = match e.kind with Read -> 0 | Write -> 1 in
    let si = match e.source with App -> 0 | Malloc -> 1 | Free -> 2 in
    let ks = (ki * 3) + si in
    Array.unsafe_set c.cells ks (Array.unsafe_get c.cells ks + 1)

  (* Packed path: size and the fused counter index both come straight
     out of the meta word — no record is ever materialised. *)
  let count_meta c meta =
    c.bytes <- c.bytes + (meta lsr 3);
    let ks = Event.Packed.ks meta in
    Array.unsafe_set c.cells ks (Array.unsafe_get c.cells ks + 1)

  let sink c =
    { emit = count c;
      emit_batch = batch_of_emit (count c);
      emit_packed_batch =
        (fun b ->
          let metas = b.Event.Batch.metas in
          for i = 0 to b.Event.Batch.len - 1 do
            count_meta c (Array.unsafe_get metas i)
          done);
    }

  let reads c = c.cells.(0) + c.cells.(1) + c.cells.(2)
  let writes c = c.cells.(3) + c.cells.(4) + c.cells.(5)
  let total c = reads c + writes c
  let bytes c = c.bytes

  let by_source c = function
    | Event.App -> c.cells.(0) + c.cells.(3)
    | Event.Malloc -> c.cells.(1) + c.cells.(4)
    | Event.Free -> c.cells.(2) + c.cells.(5)

  let reset c =
    Array.fill c.cells 0 6 0;
    c.bytes <- 0
end

module Checksum = struct
  type checksum = { mutable h : int }

  (* FNV-1a over the native int width: wrap-around multiplication is
     deterministic for a given word size, and every simulation in this
     repo runs on 64-bit OCaml (the address space itself needs it). *)
  let fnv_prime = 0x100000001B3
  let fnv_basis = 0x11C9DC5

  let create () = { h = fnv_basis }

  let mix c x = c.h <- (c.h lxor x) * fnv_prime

  (* The boxed path mixes (addr, meta-word); the packed path mixes the
     same two ints directly (the packed meta layout IS the word this
     checksum has always mixed), so the two paths agree bit for bit. *)
  let feed c (e : Event.t) =
    mix c e.addr;
    mix c (Event.Packed.meta_of_event e)

  let sink c =
    { emit = feed c;
      emit_batch = batch_of_emit (feed c);
      emit_packed_batch =
        (fun b ->
          let addrs = b.Event.Batch.addrs and metas = b.Event.Batch.metas in
          for i = 0 to b.Event.Batch.len - 1 do
            mix c (Array.unsafe_get addrs i);
            mix c (Array.unsafe_get metas i)
          done);
    }

  (* Mask the sign bit away so the value prints, compares and encodes
     as a plain non-negative int everywhere. *)
  let value c = c.h land max_int
end

module Recorder = struct
  (* Bounded retention in preallocated packed arrays: the first
     [capacity] events are kept (two int stores each, no per-event list
     cell), later events are only counted. *)
  type recorder = {
    capacity : int;
    addrs : int array;
    metas : int array;
    mutable len : int;  (* events retained; = min (count, capacity) *)
    mutable count : int;  (* events observed *)
  }

  let create ?(capacity = 65536) () =
    (* Not an assert: -noassert builds must still reject a negative
       capacity instead of silently recording nothing. *)
    if capacity < 0 then
      invalid_arg "Sink.Recorder.create: capacity must be >= 0";
    { capacity;
      addrs = Array.make capacity 0;
      metas = Array.make capacity 0;
      len = 0;
      count = 0 }

  let record r addr meta =
    if r.len < r.capacity then begin
      Array.unsafe_set r.addrs r.len addr;
      Array.unsafe_set r.metas r.len meta;
      r.len <- r.len + 1
    end;
    r.count <- r.count + 1

  let sink r =
    { emit = (fun e -> record r e.addr (Event.Packed.meta_of_event e));
      emit_batch =
        (fun buf len ->
          for i = 0 to len - 1 do
            let e = Array.unsafe_get buf i in
            record r e.Event.addr (Event.Packed.meta_of_event e)
          done);
      emit_packed_batch =
        (fun b ->
          (* Real batch path: blit the fitting prefix, count the rest. *)
          let n = b.Event.Batch.len in
          let fit = min n (r.capacity - r.len) in
          if fit > 0 then begin
            Array.blit b.Event.Batch.addrs 0 r.addrs r.len fit;
            Array.blit b.Event.Batch.metas 0 r.metas r.len fit;
            r.len <- r.len + fit
          end;
          r.count <- r.count + n);
    }

  let events r =
    List.init r.len (fun i ->
        Event.Packed.to_event ~addr:r.addrs.(i) ~meta:r.metas.(i))

  let dropped r = max 0 (r.count - r.capacity)
end
