type t = {
  emit : Event.t -> unit;
  emit_batch : Event.t array -> int -> unit;
}

let batch_of_emit f buf len =
  for i = 0 to len - 1 do
    f (Array.unsafe_get buf i)
  done

let dummy_event : Event.t =
  { kind = Event.Read; source = Event.App; addr = 0; size = 1 }

let null = { emit = ignore; emit_batch = (fun _ _ -> ()) }
let of_fn f = { emit = f; emit_batch = batch_of_emit f }
let make ~emit ~emit_batch = { emit; emit_batch }
let emit_batch t buf ~len = t.emit_batch buf len

let fanout sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | [ a; b ] ->
      { emit =
          (fun e ->
            a.emit e;
            b.emit e);
        emit_batch =
          (fun buf len ->
            a.emit_batch buf len;
            b.emit_batch buf len);
      }
  | sinks ->
      let arr = Array.of_list sinks in
      { emit =
          (fun e ->
            for i = 0 to Array.length arr - 1 do
              arr.(i).emit e
            done);
        emit_batch =
          (fun buf len ->
            for i = 0 to Array.length arr - 1 do
              arr.(i).emit_batch buf len
            done);
      }

let filter pred sink =
  (* The batch path must stay a batch path: compact the matching events
     into a scratch buffer (the caller's buffer is shared with sibling
     fanout consumers, so it must not be compacted in place) and forward
     them as one emit_batch call. *)
  let scratch = ref [||] in
  { emit = (fun e -> if pred e then sink.emit e);
    emit_batch =
      (fun buf len ->
        if Array.length !scratch < len then
          scratch := Array.make (max len 256) dummy_event;
        let out = !scratch in
        let n = ref 0 in
        for i = 0 to len - 1 do
          let e = Array.unsafe_get buf i in
          if pred e then begin
            Array.unsafe_set out !n e;
            incr n
          end
        done;
        if !n > 0 then sink.emit_batch out !n);
  }

module Batcher = struct
  type batcher = {
    buf : Event.t array;
    capacity : int;
    mutable len : int;
    downstream : t;
  }

  let default_capacity = 256

  let create ?(capacity = default_capacity) downstream =
    if capacity < 1 then invalid_arg "Sink.Batcher.create: capacity must be >= 1";
    { buf = Array.make capacity dummy_event; capacity; len = 0; downstream }

  let flush b =
    if b.len > 0 then begin
      b.downstream.emit_batch b.buf b.len;
      b.len <- 0
    end

  let sink b =
    { emit =
        (fun e ->
          Array.unsafe_set b.buf b.len e;
          b.len <- b.len + 1;
          if b.len = b.capacity then flush b);
      emit_batch =
        (* Already-batched input: drain our buffer to keep order, then
           pass the foreign batch through untouched. *)
        (fun buf len ->
          flush b;
          b.downstream.emit_batch buf len);
    }
end

module Counter = struct
  (* Event tallies live in a 6-cell array indexed [ki*3 + si] (ki: 0
     read / 1 write; si: 0 app / 1 malloc / 2 free): classifying an
     event is one read-modify-write on the hot path, totals and
     marginals are summed on demand. *)
  type counter = {
    cells : int array;
    mutable bytes : int;
  }

  let create () = { cells = Array.make 6 0; bytes = 0 }

  let count c (e : Event.t) =
    c.bytes <- c.bytes + e.size;
    let ki = match e.kind with Read -> 0 | Write -> 1 in
    let si = match e.source with App -> 0 | Malloc -> 1 | Free -> 2 in
    let ks = (ki * 3) + si in
    Array.unsafe_set c.cells ks (Array.unsafe_get c.cells ks + 1)

  let sink c = of_fn (count c)

  let reads c = c.cells.(0) + c.cells.(1) + c.cells.(2)
  let writes c = c.cells.(3) + c.cells.(4) + c.cells.(5)
  let total c = reads c + writes c
  let bytes c = c.bytes

  let by_source c = function
    | Event.App -> c.cells.(0) + c.cells.(3)
    | Event.Malloc -> c.cells.(1) + c.cells.(4)
    | Event.Free -> c.cells.(2) + c.cells.(5)

  let reset c =
    Array.fill c.cells 0 6 0;
    c.bytes <- 0
end

module Checksum = struct
  type checksum = { mutable h : int }

  (* FNV-1a over the native int width: wrap-around multiplication is
     deterministic for a given word size, and every simulation in this
     repo runs on 64-bit OCaml (the address space itself needs it). *)
  let fnv_prime = 0x100000001B3
  let fnv_basis = 0x11C9DC5

  let create () = { h = fnv_basis }

  let mix c x = c.h <- (c.h lxor x) * fnv_prime

  let feed c (e : Event.t) =
    let ki = match e.kind with Event.Read -> 0 | Event.Write -> 1 in
    let si =
      match e.source with Event.App -> 0 | Event.Malloc -> 1 | Event.Free -> 2
    in
    mix c e.addr;
    mix c ((e.size lsl 3) lor (ki lsl 2) lor si)

  let sink c = of_fn (feed c)

  (* Mask the sign bit away so the value prints, compares and encodes
     as a plain non-negative int everywhere. *)
  let value c = c.h land max_int
end

module Recorder = struct
  type recorder = {
    capacity : int;
    mutable events_rev : Event.t list;
    mutable count : int;
  }

  let create ?(capacity = 65536) () =
    (* Not an assert: -noassert builds must still reject a negative
       capacity instead of silently recording nothing. *)
    if capacity < 0 then
      invalid_arg "Sink.Recorder.create: capacity must be >= 0";
    { capacity; events_rev = []; count = 0 }

  let sink r =
    of_fn (fun e ->
        if r.count < r.capacity then r.events_rev <- e :: r.events_rev;
        r.count <- r.count + 1)

  let events r = List.rev r.events_rev
  let dropped r = max 0 (r.count - r.capacity)
end
