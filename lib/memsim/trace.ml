(* First-class trace sources.

   Until now the only producer of reference events was a synthetic
   Workload run; this module makes the event source pluggable.  Every
   reader streams packed {!Event.Batch} deliveries into a sink — no
   boxed [Event.t] on the hot path — so an externally captured trace
   flows through exactly the pipeline (forest, shard, hierarchy, vmsim)
   that synthetic traffic does. *)

let framed_magic = "LOCTRC1\n"

module Source = struct
  type format = Binary | Text | Csv | Framed

  let format_to_string = function
    | Binary -> "binary"
    | Text -> "text"
    | Csv -> "csv"
    | Framed -> "framed"

  let all_formats =
    [ ("binary", Binary); ("text", Text); ("csv", Csv); ("framed", Framed) ]

  let format_of_string s =
    match List.assoc_opt (String.lowercase_ascii (String.trim s)) all_formats with
    | Some f -> Result.Ok f
    | None ->
        Result.Error
          (Printf.sprintf "unknown trace format %S (use binary|text|csv|framed)"
             s)

  let csv_header = "index,op,address"

  (* Recognise a trace's format from its leading bytes: both binary
     containers start with a fixed magic and the CSV export starts with
     its header row; anything else is read as cachetrace text. *)
  let sniff data =
    if String.starts_with ~prefix:Trace_file.magic data then Binary
    else if String.starts_with ~prefix:framed_magic data then Framed
    else
      let line_end =
        match String.index_opt data '\n' with
        | Some i -> i
        | None -> String.length data
      in
      let line_end =
        if line_end > 0 && data.[line_end - 1] = '\r' then line_end - 1
        else line_end
      in
      if String.lowercase_ascii (String.sub data 0 line_end) = csv_header then
        Csv
      else Text

  type t =
    | Synthetic of { program : string; allocator : string }
    | Trace_file of string
    | Text_file of string
    | Csv_file of string
    | Framed_file of string

  let format_of = function
    | Synthetic _ -> None
    | Trace_file _ -> Some Binary
    | Text_file _ -> Some Text
    | Csv_file _ -> Some Csv
    | Framed_file _ -> Some Framed

  let path_of = function
    | Synthetic _ -> None
    | Trace_file p | Text_file p | Csv_file p | Framed_file p -> Some p

  let to_string = function
    | Synthetic { program; allocator } ->
        Printf.sprintf "synthetic:%s/%s" program allocator
    | Trace_file p -> "binary:" ^ p
    | Text_file p -> "text:" ^ p
    | Csv_file p -> "csv:" ^ p
    | Framed_file p -> "framed:" ^ p
end

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- text & CSV parsing helpers -------------------------------------- *)

(* Imported text/CSV events are address+kind only, normalised to one
   App byte each: meta 8 for reads, 12 for writes (see Event.Packed). *)
let read_meta = Event.Packed.meta ~kind:Event.Read ~source:Event.App ~size:1
let write_meta = Event.Packed.meta ~kind:Event.Write ~source:Event.App ~size:1

let is_blank data a b =
  let rec go i =
    i >= b || (match data.[i] with ' ' | '\t' -> go (i + 1) | _ -> false)
  in
  go a

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let bad what line_no data a b detail =
  let excerpt =
    let n = b - a in
    if n <= 60 then String.sub data a n else String.sub data a 57 ^ "..."
  in
  failwith
    (Printf.sprintf "Trace.%s: line %d: %s in %S" what line_no detail excerpt)

(* Parse an address field [a, b): optional 0x/0X prefix, then hex
   digits.  Addresses up to the native 63-bit int are accepted (well
   past 2^32); larger values are rejected, not silently wrapped. *)
let parse_addr what line_no data a b =
  let a =
    if b - a >= 2 && data.[a] = '0' && (data.[a + 1] = 'x' || data.[a + 1] = 'X')
    then a + 2
    else a
  in
  if a >= b then bad what line_no data a b "missing address";
  let acc = ref 0 in
  for i = a to b - 1 do
    let d = hex_val data.[i] in
    if d < 0 then bad what line_no data a b "bad hex digit in address";
    if !acc > (max_int - d) / 16 then
      bad what line_no data a b "address overflows 63 bits";
    acc := (!acc * 16) + d
  done;
  !acc

let parse_op what line_no data a b c =
  match c with
  | 'R' | 'r' -> read_meta
  | 'W' | 'w' -> write_meta
  | _ -> bad what line_no data a b "expected op R or W"

(* Shared line-driver: walks [data] line by line (accepting LF and
   CRLF, skipping blank lines), hands each non-blank line's [a, b)
   bounds and number to [parse], which pushes packed events into
   [batch].  Deliveries happen at the pipeline's standard batch
   grain. *)
let read_lines data sink parse =
  let batch = Event.Batch.create () in
  let cap = Event.Batch.capacity batch in
  let flush () =
    if batch.Event.Batch.len > 0 then begin
      sink.Sink.emit_packed_batch batch;
      Event.Batch.clear batch
    end
  in
  let len = String.length data in
  let count = ref 0 in
  let line_no = ref 0 in
  let pos = ref 0 in
  while !pos < len do
    incr line_no;
    let eol =
      match String.index_from_opt data !pos '\n' with
      | Some i -> i
      | None -> len
    in
    let b = if eol > !pos && data.[eol - 1] = '\r' then eol - 1 else eol in
    if not (is_blank data !pos b) then begin
      if batch.Event.Batch.len = cap then flush ();
      parse !line_no !pos b batch;
      incr count
    end;
    pos := eol + 1
  done;
  flush ();
  !count

(* ---- the cachetrace text format -------------------------------------- *)

(* Grammar (per non-blank line): [RrWw] whitespace+ (0x|0X)? hexdigits,
   optionally followed by trailing whitespace. *)
module Text = struct
  let parse_line data line_no a b batch =
    let meta = parse_op "Text" line_no data a b data.[a] in
    let i = ref (a + 1) in
    while !i < b && (data.[!i] = ' ' || data.[!i] = '\t') do
      incr i
    done;
    if !i = a + 1 then
      bad "Text" line_no data a b "expected whitespace after op";
    let j = ref b in
    while !j > !i && (data.[!j - 1] = ' ' || data.[!j - 1] = '\t') do
      decr j
    done;
    let addr = parse_addr "Text" line_no data !i !j in
    Event.Batch.push batch ~addr ~meta

  let read data sink =
    read_lines data sink (fun line_no a b batch -> parse_line data line_no a b batch)

  let write f =
    let b = Buffer.create 4096 in
    let emit_packed_batch (batch : Event.Batch.t) =
      for i = 0 to batch.Event.Batch.len - 1 do
        let m = Array.unsafe_get batch.Event.Batch.metas i in
        Buffer.add_string b (if m land 4 = 0 then "R 0x" else "W 0x");
        Printf.bprintf b "%x\n" (Array.unsafe_get batch.Event.Batch.addrs i)
      done
    in
    f (Sink.make_packed ~emit_packed_batch);
    Buffer.contents b
end

(* ---- per-access CSV (cachetrace's column layout) ---------------------- *)

(* Header row "index,op,address", then one row per access:
   0-based index, R/W, 0x-prefixed hex address. *)
module Csv = struct
  let parse_row data line_no a b batch =
    match String.index_from_opt data a ',' with
    | Some c1 when c1 < b -> (
        match String.index_from_opt data (c1 + 1) ',' with
        | Some c2 when c2 < b ->
            if c2 - c1 <> 2 then
              bad "Csv" line_no data a b "op column must be a single R or W";
            let meta = parse_op "Csv" line_no data a b data.[c1 + 1] in
            let addr = parse_addr "Csv" line_no data (c2 + 1) b in
            Event.Batch.push batch ~addr ~meta
        | _ -> bad "Csv" line_no data a b "expected index,op,address")
    | _ -> bad "Csv" line_no data a b "expected index,op,address"

  let read data sink =
    let seen_header = ref false in
    let lines =
      read_lines data sink (fun line_no a b batch ->
          if !seen_header then parse_row data line_no a b batch
          else begin
            let line = String.lowercase_ascii (String.sub data a (b - a)) in
            if String.trim line <> Source.csv_header then
              bad "Csv" line_no data a b
                (Printf.sprintf "expected header %S" Source.csv_header);
            seen_header := true
          end)
    in
    (* the header row is not an event *)
    lines - (if !seen_header then 1 else 0)

  let write f =
    let b = Buffer.create 4096 in
    Buffer.add_string b Source.csv_header;
    Buffer.add_char b '\n';
    let index = ref 0 in
    let emit_packed_batch (batch : Event.Batch.t) =
      for i = 0 to batch.Event.Batch.len - 1 do
        let m = Array.unsafe_get batch.Event.Batch.metas i in
        Printf.bprintf b "%d,%s,0x%x\n" !index
          (if m land 4 = 0 then "R" else "W")
          (Array.unsafe_get batch.Event.Batch.addrs i);
        incr index
      done
    in
    f (Sink.make_packed ~emit_packed_batch);
    Buffer.contents b
end

(* ---- compact binary under the shared frame envelope ------------------- *)

(* A Trace_file byte stream wrapped in the store's self-checking
   [Binio.Frame] envelope (magic "LOCTRC1\n"), with the event count up
   front: [frame( int count | string trace-bytes )].  The CRC makes a
   framed trace safe to ship over the serve protocol or store on disk
   without trusting the transport. *)
module Framed = struct
  let read data sink =
    match Binio.Frame.unframe ~magic:framed_magic data with
    | Result.Error reason -> failwith ("Trace.Framed: " ^ reason)
    | Result.Ok payload -> (
        let r = Binio.Reader.of_string payload in
        match
          let count = Binio.Reader.int r in
          let trace = Binio.Reader.string r in
          if not (Binio.Reader.at_end r) then
            failwith "Trace.Framed: trailing bytes after trace payload";
          (count, trace)
        with
        | exception Binio.Error msg -> failwith ("Trace.Framed: " ^ msg)
        | count, trace ->
            let n = Trace_file.replay_string trace sink in
            if n <> count then
              failwith
                (Printf.sprintf
                   "Trace.Framed: header promises %d events but trace holds %d"
                   count n);
            n)

  let write f =
    let count = ref 0 in
    let trace =
      Trace_file.record_to_string (fun rec_sink ->
          let counting =
            Sink.make_packed ~emit_packed_batch:(fun batch ->
                count := !count + batch.Event.Batch.len;
                rec_sink.Sink.emit_packed_batch batch)
          in
          f counting)
    in
    let w = Binio.Writer.create () in
    Binio.Writer.int w !count;
    Binio.Writer.string w trace;
    Binio.Frame.frame ~magic:framed_magic (Binio.Writer.contents w)
end

(* ---- format dispatch -------------------------------------------------- *)

let read format data sink =
  match (format : Source.format) with
  | Source.Binary -> Trace_file.replay_string data sink
  | Source.Text -> Text.read data sink
  | Source.Csv -> Csv.read data sink
  | Source.Framed -> Framed.read data sink

let write format f =
  match (format : Source.format) with
  | Source.Binary -> Trace_file.record_to_string f
  | Source.Text -> Text.write f
  | Source.Csv -> Csv.write f
  | Source.Framed -> Framed.write f

let of_path ?format path =
  let format =
    match format with Some f -> f | None -> Source.sniff (slurp path)
  in
  match (format : Source.format) with
  | Source.Binary -> Source.Trace_file path
  | Source.Text -> Source.Text_file path
  | Source.Csv -> Source.Csv_file path
  | Source.Framed -> Source.Framed_file path
