type kind = Read | Write
type source = App | Malloc | Free
type t = { kind : kind; source : source; addr : Addr.t; size : int }

let read ?(source = App) addr size =
  assert (size >= 1);
  { kind = Read; source; addr; size }

let write ?(source = App) addr size =
  assert (size >= 1);
  { kind = Write; source; addr; size }

let kind_to_string = function Read -> "R" | Write -> "W"

let source_to_string = function
  | App -> "app"
  | Malloc -> "malloc"
  | Free -> "free"

let pp ppf t =
  Format.fprintf ppf "%s %s %a+%d" (kind_to_string t.kind)
    (source_to_string t.source) Addr.pp t.addr t.size

type event = t

module Packed = struct
  (* An event is two native ints: the address, verbatim, and a meta word
     [size lsl 3  lor  kind lsl 2  lor  source] (kind: 0 read / 1 write;
     source: 0 app / 1 malloc / 2 free).  The meta layout is exactly the
     word {!Sink.Checksum} has always mixed per event, so a checksum
     over packed traffic equals the checksum over the boxed record
     stream bit for bit. *)

  let kind_bit = function Read -> 0 | Write -> 4
  let source_bits = function App -> 0 | Malloc -> 1 | Free -> 2

  let meta ~kind ~source ~size =
    (size lsl 3) lor kind_bit kind lor source_bits source

  let meta_of_event e = meta ~kind:e.kind ~source:e.source ~size:e.size
  let kind m = if m land 4 = 0 then Read else Write
  let source m = match m land 3 with 0 -> App | 1 -> Malloc | _ -> Free
  let size m = m lsr 3

  (* Fused kind x source counter index [ki*3 + si], the layout the
     cache simulators and {!Sink.Counter} tally into. *)
  let ks m = (((m lsr 2) land 1) * 3) + (m land 3)

  let to_event ~addr ~meta =
    { kind = kind meta; source = source meta; addr; size = size meta }
end

module Batch = struct
  (* Struct-of-arrays event buffer: parallel preallocated [int array]s
     (native unboxed ints in OCaml) instead of an array of boxed
     records.  [addrs.(i)]/[metas.(i)] for i < len are the events, in
     emission order; slots beyond [len] are garbage. *)
  type t = {
    mutable addrs : int array;
    mutable metas : int array;
    mutable len : int;
  }

  let default_capacity = 256

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Event.Batch.create: capacity must be >= 1";
    { addrs = Array.make capacity 0; metas = Array.make capacity 0; len = 0 }

  let capacity b = Array.length b.addrs
  let length b = b.len
  let clear b = b.len <- 0

  let grow b needed =
    let cap = Array.length b.addrs in
    let cap' =
      let rec go c = if c >= needed then c else go (2 * c) in
      go (2 * cap)
    in
    let addrs = Array.make cap' 0 and metas = Array.make cap' 0 in
    Array.blit b.addrs 0 addrs 0 b.len;
    Array.blit b.metas 0 metas 0 b.len;
    b.addrs <- addrs;
    b.metas <- metas

  let push b ~addr ~meta =
    if b.len = Array.length b.addrs then grow b (b.len + 1);
    Array.unsafe_set b.addrs b.len addr;
    Array.unsafe_set b.metas b.len meta;
    b.len <- b.len + 1

  let push_event b e = push b ~addr:e.addr ~meta:(Packed.meta_of_event e)

  let append b src =
    let n = src.len in
    if b.len + n > Array.length b.addrs then grow b (b.len + n);
    Array.blit src.addrs 0 b.addrs b.len n;
    Array.blit src.metas 0 b.metas b.len n;
    b.len <- b.len + n

  let get b i =
    if i < 0 || i >= b.len then invalid_arg "Event.Batch.get: out of bounds";
    Packed.to_event ~addr:(Array.unsafe_get b.addrs i)
      ~meta:(Array.unsafe_get b.metas i)

  let of_events buf len =
    let b = create ~capacity:(max 1 len) () in
    for i = 0 to len - 1 do
      push_event b buf.(i)
    done;
    b

  let to_list b = List.init b.len (get b)

  let copy b =
    { addrs = Array.sub b.addrs 0 (max 1 b.len);
      metas = Array.sub b.metas 0 (max 1 b.len);
      len = b.len }

  let iter f b =
    for i = 0 to b.len - 1 do
      f (get b i)
    done
end
