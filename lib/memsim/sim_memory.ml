(* The backing store is a dense array indexed by word index: simulated
   addresses start at a small fixed layout base and metadata stores
   cluster in the static+heap regions, so the footprint stays
   proportional to the highest address actually stored to — and a
   store/load is an array access instead of a hashtable probe on the
   allocators' hot path.  [touched] marks words ever stored, preserving
   the distinct-word count (reads of untouched words are 0 either
   way).

   Trace emission is packed and batched at the source: each access
   appends (addr, meta) to an internal {!Event.Batch} — two int stores,
   no [Event.t] record — which is flushed downstream as one
   [emit_packed_batch] per 256 events.  Anything observing the sink's
   state must {!flush} first (the workload driver does). *)
type t = {
  mutable words : int array;
  mutable touched : Bytes.t;
  mutable written : int;  (* distinct words ever stored *)
  mutable sink : Sink.t;
  mutable source : Event.source;
  mutable src_bits : int;  (* Packed.source_bits of [source], cached *)
  buf : Event.Batch.t;
}

let batch_capacity = Event.Batch.default_capacity

let create ?(sink = Sink.null) () =
  { words = Array.make 4096 0;
    touched = Bytes.make 4096 '\000';
    written = 0;
    sink;
    source = Event.App;
    src_bits = 0;
    buf = Event.Batch.create ~capacity:batch_capacity () }

(* Grow (by doubling) until word index [i] is in range. *)
let ensure t i =
  let n = Array.length t.words in
  if i >= n then begin
    let n' =
      let rec go n' = if i < n' then n' else go (2 * n') in
      go (2 * n)
    in
    let words = Array.make n' 0 in
    Array.blit t.words 0 words 0 n;
    let touched = Bytes.make n' '\000' in
    Bytes.blit t.touched 0 touched 0 n;
    t.words <- words;
    t.touched <- touched
  end

let flush t =
  if t.buf.Event.Batch.len > 0 then begin
    t.sink.Sink.emit_packed_batch t.buf;
    Event.Batch.clear t.buf
  end

let set_sink t sink =
  (* Anything already buffered belongs to the old sink's trace. *)
  flush t;
  t.sink <- sink

let source t = t.source

let set_source t src =
  t.source <- src;
  t.src_bits <- (match src with Event.App -> 0 | Event.Malloc -> 1 | Event.Free -> 2)

let with_source t src f =
  let saved = t.source in
  set_source t src;
  Fun.protect ~finally:(fun () -> set_source t saved) f

let check_word_addr a =
  if not (Addr.word_aligned a) then
    invalid_arg (Printf.sprintf "Sim_memory: unaligned word access at 0x%x" a);
  if a <= 0 then
    invalid_arg (Printf.sprintf "Sim_memory: access to null/negative 0x%x" a)

let set_word t i v =
  ensure t i;
  Array.unsafe_set t.words i v;
  if Bytes.unsafe_get t.touched i = '\000' then begin
    Bytes.unsafe_set t.touched i '\001';
    t.written <- t.written + 1
  end

let get_word t i = if i < Array.length t.words then Array.unsafe_get t.words i else 0

(* Append one packed event, flushing at the batch grain.  [kmeta] is the
   meta word sans source bits: size lsl 3 (read) or size lsl 3 lor 4
   (write). *)
let emit_packed t addr kmeta =
  Event.Batch.push t.buf ~addr ~meta:(kmeta lor t.src_bits);
  (* Flush-on-full after the push: the same 256-event delivery
     boundaries the driver's Sink.Batcher used to produce. *)
  if t.buf.Event.Batch.len = batch_capacity then flush t

(* Word-access meta words, precomputed: word_bytes lsl 3 (+ write bit). *)
let word_read_meta = Addr.word_bytes lsl 3
let word_write_meta = (Addr.word_bytes lsl 3) lor 4

let load t a =
  check_word_addr a;
  emit_packed t a word_read_meta;
  get_word t (Addr.word_index a)

let store t a v =
  check_word_addr a;
  emit_packed t a word_write_meta;
  set_word t (Addr.word_index a) v

let ranged t kbit a n =
  assert (n >= 0);
  if n > 0 then begin
    (* Word-grain events, as PIXIE traces are: first piece may be a
       partial word, then whole words. *)
    let w = Addr.word_bytes in
    let first = min n (w - (a land (w - 1))) in
    emit_packed t a ((first lsl 3) lor kbit);
    let pos = ref (a + first) in
    let remaining = ref (n - first) in
    while !remaining > 0 do
      let piece = min w !remaining in
      emit_packed t !pos ((piece lsl 3) lor kbit);
      pos := !pos + piece;
      remaining := !remaining - piece
    done
  end

let read_bytes t a n = ranged t 0 a n
let write_bytes t a n = ranged t 4 a n

let peek t a =
  check_word_addr a;
  get_word t (Addr.word_index a)

let poke t a v =
  check_word_addr a;
  set_word t (Addr.word_index a) v

let words_written t = t.written
