(* Chunked packed trace capture.  Each chunk is a fixed-capacity
   Event.Batch; filling one allocates the next, so capturing an N-event
   trace costs ~2N ints in a handful of arrays, with no per-event
   boxing and no quadratic re-blitting.  Incoming packed batches are
   absorbed by blit. *)

type t = {
  chunk_capacity : int;
  mutable chunks_rev : Event.Batch.t list;  (* full chunks, newest first *)
  mutable current : Event.Batch.t;
  mutable total : int;
}

let default_chunk_capacity = 1 lsl 16

let create ?(chunk_capacity = default_chunk_capacity) () =
  if chunk_capacity < 1 then
    invalid_arg "Trace_buffer.create: chunk_capacity must be >= 1";
  { chunk_capacity;
    chunks_rev = [];
    current = Event.Batch.create ~capacity:chunk_capacity ();
    total = 0 }

let length t = t.total

let rotate t =
  t.chunks_rev <- t.current :: t.chunks_rev;
  t.current <- Event.Batch.create ~capacity:t.chunk_capacity ()

(* Copy [src.(off .. off+n)] into the buffer, rotating at chunk
   boundaries. *)
let absorb t (src : Event.Batch.t) =
  let off = ref 0 in
  let remaining = ref src.Event.Batch.len in
  while !remaining > 0 do
    let room = t.chunk_capacity - t.current.Event.Batch.len in
    if room = 0 then rotate t
    else begin
      let n = min room !remaining in
      let cur = t.current in
      Array.blit src.Event.Batch.addrs !off cur.Event.Batch.addrs
        cur.Event.Batch.len n;
      Array.blit src.Event.Batch.metas !off cur.Event.Batch.metas
        cur.Event.Batch.len n;
      cur.Event.Batch.len <- cur.Event.Batch.len + n;
      off := !off + n;
      remaining := !remaining - n
    end
  done;
  t.total <- t.total + src.Event.Batch.len

let push t ~addr ~meta =
  if t.current.Event.Batch.len = t.chunk_capacity then rotate t;
  Event.Batch.push t.current ~addr ~meta;
  t.total <- t.total + 1

let sink t =
  { Sink.emit =
      (fun e -> push t ~addr:e.Event.addr ~meta:(Event.Packed.meta_of_event e));
    emit_batch =
      (fun buf len ->
        for i = 0 to len - 1 do
          let e = Array.unsafe_get buf i in
          push t ~addr:e.Event.addr ~meta:(Event.Packed.meta_of_event e)
        done);
    emit_packed_batch = (fun b -> absorb t b);
  }

let chunks t =
  let all = List.rev (if t.current.Event.Batch.len > 0 then t.current :: t.chunks_rev else t.chunks_rev) in
  Array.of_list all

let events t =
  Array.to_list (chunks t) |> List.concat_map Event.Batch.to_list

let replay t sink =
  let cs = chunks t in
  for i = 0 to Array.length cs - 1 do
    sink.Sink.emit_packed_batch cs.(i)
  done

let iter_chunks f t =
  let cs = chunks t in
  for i = 0 to Array.length cs - 1 do
    f cs.(i)
  done
