(** The simulated data memory.

    [Sim_memory] plays the role PIXIE-instrumented hardware plays in the
    paper: every load and store goes through it, is recorded as a trace
    event, and (for word accesses) actually reads or writes a backing
    store so allocator metadata — freelist links, boundary tags, chunk
    headers — behaves like real memory.

    Accesses carry the current {e source} ([App], [Malloc] or [Free]);
    allocators set the source on entry to [malloc]/[free] so their
    metadata traffic is attributed correctly.

    Events are packed at the source into an internal {!Event.Batch} and
    delivered downstream as one [emit_packed_batch] per 256 events — no
    [Event.t] record is allocated on the hot path.  Consequently sink
    state lags the simulation by up to one batch: call {!flush} before
    observing counters, checksums or cache statistics fed by this
    memory's sink.  ({!Workload.Driver} flushes for you.) *)

type t

val create : ?sink:Sink.t -> unit -> t
(** A fresh memory whose trace is sent to [sink] (default {!Sink.null}).
    The sink can be replaced later with {!set_sink}. *)

val set_sink : t -> Sink.t -> unit
(** Replaces the sink, first flushing buffered events to the old one. *)

val flush : t -> unit
(** Delivers any internally buffered events to the sink now. *)

val source : t -> Event.source
val set_source : t -> Event.source -> unit
(** Sets the attribution for subsequent accesses. *)

val with_source : t -> Event.source -> (unit -> 'a) -> 'a
(** [with_source t src f] runs [f] with the source set to [src],
    restoring the previous source afterwards (even on exceptions). *)

(** {1 Word accesses (allocator metadata)} *)

val load : t -> Addr.t -> int
(** [load t a] reads the word at word-aligned address [a], emitting a
    4-byte read event.  Uninitialised words read as 0. *)

val store : t -> Addr.t -> int -> unit
(** [store t a v] writes [v] to the word at word-aligned address [a],
    emitting a 4-byte write event. *)

(** {1 Ranged accesses (application payloads)}

    Payload contents are not modelled — only the reference stream — so
    these emit events without touching the backing store.  A ranged
    access is emitted as one event per word-sized piece, mirroring the
    word-grain traces PIXIE produces. *)

val read_bytes : t -> Addr.t -> int -> unit
(** [read_bytes t a n] emits read events covering [\[a, a+n)]. *)

val write_bytes : t -> Addr.t -> int -> unit
(** [write_bytes t a n] emits write events covering [\[a, a+n)]. *)

(** {1 Silent inspection (tests only)} *)

val peek : t -> Addr.t -> int
(** Like {!load} but emits no event. *)

val poke : t -> Addr.t -> int -> unit
(** Like {!store} but emits no event. *)

val words_written : t -> int
(** Number of distinct words ever stored — a measure of the metadata
    footprint, used in tests. *)
