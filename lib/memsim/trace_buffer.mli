(** In-memory packed trace capture.

    A [Trace_buffer] records a whole reference trace in chunked
    {!Event.Batch} form — ~2 native ints per event, no boxing — so a
    trace can be captured once and replayed through many consumers
    (e.g. the same trace against several cache configurations, or the
    same trace sharded across domains; see [Cachesim.Shard]).

    Chunks returned by {!chunks} alias the buffer's storage: capture
    first, then replay — pushing more events after taking [chunks] may
    leave the returned array stale. *)

type t

val create : ?chunk_capacity:int -> unit -> t
(** A fresh empty buffer.  [chunk_capacity] (default 65536 events) is
    the granularity of internal storage and of {!replay} deliveries.
    @raise Invalid_argument if [chunk_capacity < 1]. *)

val default_chunk_capacity : int

val length : t -> int
(** Events captured so far. *)

val sink : t -> Sink.t
(** A sink that appends everything it receives.  Packed batches are
    absorbed by blitting. *)

val push : t -> addr:int -> meta:int -> unit
(** Appends one packed event directly. *)

val chunks : t -> Event.Batch.t array
(** The captured trace as packed chunks, in emission order.  Read-only;
    aliases internal storage. *)

val events : t -> Event.t list
(** The captured trace decoded to boxed events (tests/small traces). *)

val replay : t -> Sink.t -> unit
(** Delivers the whole trace to [sink] as packed batches, in order. *)

val iter_chunks : (Event.Batch.t -> unit) -> t -> unit
