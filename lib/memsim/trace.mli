(** First-class trace sources.

    The event {e source} is pluggable: a reference trace can come from a
    synthetic workload run, a recorded {!Trace_file}, an external
    cachetrace-style text capture, a per-access CSV export, or a compact
    CRC-framed binary.  Every reader streams packed {!Event.Batch}
    deliveries into a sink — no boxed [Event.t] on the hot path — so
    external traffic flows through exactly the pipeline synthetic
    traffic does.

    Formats:
    - {b text} (cachetrace): one access per line, [R 0xADDR] /
      [W 0xADDR].  Readers accept lowercase [r]/[w], an optional
      [0x]/[0X] prefix, CRLF line endings, blank lines, and addresses up
      to the native 63-bit int.  Imported events are normalised to
      size 1, source [App].
    - {b csv}: header row [index,op,address], then one row per access:
      0-based index, [R]/[W], [0x]-prefixed hex address (cachetrace's
      per-access column layout, for differential testing).
    - {b binary}: the {!Trace_file} encoding, verbatim.
    - {b framed}: a binary trace wrapped in the store's self-checking
      frame envelope (magic ["LOCTRC1\n"]) with the event count up
      front — safe to ship over the serve protocol.

    All readers raise [Failure] with a located message (line number for
    text/CSV, byte offset for binary) on malformed input. *)

val framed_magic : string

module Source : sig
  type format = Binary | Text | Csv | Framed

  val format_to_string : format -> string

  val format_of_string : string -> (format, string) result
  (** Case-insensitive; [Error] names the accepted spellings. *)

  val all_formats : (string * format) list
  (** [(name, format)] pairs, for CLI enumerations. *)

  val csv_header : string
  (** The CSV header row, ["index,op,address"]. *)

  val sniff : string -> format
  (** Recognise a trace's format from its leading bytes: the binary
      magics and the CSV header are unambiguous; anything else is read
      as text. *)

  (** Where a reference trace comes from.  [Synthetic] runs a workload
      model; the file variants replay a capture from disk. *)
  type t =
    | Synthetic of { program : string; allocator : string }
    | Trace_file of string  (** Recorded binary trace (path). *)
    | Text_file of string  (** Cachetrace text capture (path). *)
    | Csv_file of string  (** Per-access CSV export (path). *)
    | Framed_file of string  (** CRC-framed compact binary (path). *)

  val format_of : t -> format option
  (** [None] for [Synthetic]. *)

  val path_of : t -> string option

  val to_string : t -> string
  (** Human-readable, e.g. ["text:/tmp/capture.trc"]. *)
end

val slurp : string -> string
(** Read a whole file (binary-safe). *)

val of_path : ?format:Source.format -> string -> Source.t
(** The file-backed source for [path]; without [?format] the file's
    leading bytes are sniffed. *)

val read : Source.format -> string -> Sink.t -> int
(** [read format data sink] streams the encoded trace [data] into
    [sink] as packed batches and returns the event count.
    @raise Failure on malformed input, with the line number (text/CSV)
    or byte offset (binary) in the message. *)

val write : Source.format -> (Sink.t -> unit) -> string
(** [write format f] runs [f] with a sink that encodes everything it
    receives, and returns the encoded trace.  Text and CSV carry kind
    and address only (size and source are not representable); binary
    and framed are lossless. *)
