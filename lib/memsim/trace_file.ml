let magic = "LOCLAB1\n"

(* Flags byte layout:
   bit 0        kind (0 = read, 1 = write)
   bits 1-2     source (0 app, 1 malloc, 2 free)
   bits 3-7     size field: 1..30 inline, 31 = escaped varint follows *)

let encode_source = function
  | Event.App -> 0
  | Event.Malloc -> 1
  | Event.Free -> 2

(* Decode failures carry the byte offset of the event's flags byte and
   the byte itself in hex, so damage in a multi-MB trace can be located
   directly with dd/xxd instead of re-reading the whole file. *)
let corrupt off flags fmt =
  Printf.ksprintf
    (fun s ->
      failwith (Printf.sprintf "Trace_file: byte %d (flags 0x%02x): %s" off flags s))
    fmt

(* Writers emit through a [put]-one-byte callback so the same encoder
   serves channels (record_to_file) and in-memory buffers
   (record_to_string). *)
let write_varint put v =
  assert (v >= 0);
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      put byte;
      continue := false
    end
    else put (byte lor 0x80)
  done

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1
let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let write_event put prev_addr (e : Event.t) =
  let kind_bit = match e.kind with Event.Read -> 0 | Event.Write -> 1 in
  let size_field = if e.size >= 1 && e.size <= 30 then e.size else 31 in
  let flags = kind_bit lor (encode_source e.source lsl 1) lor (size_field lsl 3) in
  put flags;
  if size_field = 31 then write_varint put e.size;
  write_varint put (zigzag (e.addr - prev_addr))

let recording_sink put =
  let prev = ref 0 in
  Sink.of_fn (fun e ->
      write_event put !prev e;
      prev := e.Event.addr)

let record_to_file path f =
  let oc = open_out_bin path in
  output_string oc magic;
  let sink = recording_sink (output_byte oc) in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f sink)

let record_to_string f =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  f (recording_sink (fun byte -> Buffer.add_char b (Char.unsafe_chr byte)));
  Buffer.contents b

(* Readers run over a cursor so channels and in-memory strings share
   one decoder; [pos] reports absolute byte offsets for diagnostics. *)
type cursor = {
  input_byte : unit -> int;  (* raises End_of_file when exhausted *)
  pos : unit -> int;
}

let read_varint cur =
  let rec go shift acc =
    let byte = cur.input_byte () in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

(* [None] on clean end-of-trace; a truncated event is corruption. *)
let read_event cur prev_addr =
  let off = cur.pos () in
  match cur.input_byte () with
  | exception End_of_file -> None
  | flags -> (
      try
        let kind = if flags land 1 = 0 then Event.Read else Event.Write in
        let source =
          match (flags lsr 1) land 3 with
          | 0 -> Event.App
          | 1 -> Event.Malloc
          | 2 -> Event.Free
          | s -> corrupt off flags "bad source %d" s
        in
        let size_field = flags lsr 3 in
        let size = if size_field = 31 then read_varint cur else size_field in
        if size < 1 then corrupt off flags "corrupt size %d" size;
        let addr = prev_addr + unzigzag (read_varint cur) in
        Some { Event.kind; source; addr; size }
      with End_of_file -> corrupt off flags "truncated event")

let replay_cursor cur sink =
  (* Decode straight into a packed batch and deliver at the pipeline's
     batch grain — order-preserving, one downstream dispatch per 256
     events instead of one per event. *)
  let batch = Event.Batch.create () in
  let cap = Event.Batch.capacity batch in
  let flush () =
    if batch.Event.Batch.len > 0 then begin
      sink.Sink.emit_packed_batch batch;
      Event.Batch.clear batch
    end
  in
  let prev = ref 0 in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match read_event cur !prev with
    | None -> continue := false
    | Some e ->
        prev := e.Event.addr;
        incr count;
        if batch.Event.Batch.len = cap then flush ();
        Event.Batch.push_event batch e
  done;
  flush ();
  !count

let replay ic sink =
  let header =
    try really_input_string ic (String.length magic)
    with End_of_file -> failwith "Trace_file: truncated header"
  in
  if header <> magic then failwith "Trace_file: not a loclab trace";
  replay_cursor
    { input_byte = (fun () -> input_byte ic); pos = (fun () -> pos_in ic) }
    sink

let replay_string data sink =
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    failwith "Trace_file: not a loclab trace";
  let pos = ref mlen in
  let len = String.length data in
  let input_byte () =
    if !pos >= len then raise End_of_file
    else begin
      let c = Char.code (String.unsafe_get data !pos) in
      incr pos;
      c
    end
  in
  replay_cursor { input_byte; pos = (fun () -> !pos) } sink

let replay_file path sink =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> replay ic sink)
