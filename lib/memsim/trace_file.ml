let magic = "LOCLAB1\n"

(* Flags byte layout:
   bit 0        kind (0 = read, 1 = write)
   bits 1-2     source (0 app, 1 malloc, 2 free)
   bits 3-7     size field: 1..30 inline, 31 = escaped varint follows *)

let encode_source = function
  | Event.App -> 0
  | Event.Malloc -> 1
  | Event.Free -> 2

let decode_source = function
  | 0 -> Event.App
  | 1 -> Event.Malloc
  | 2 -> Event.Free
  | s -> failwith (Printf.sprintf "Trace_file: bad source %d" s)

let write_varint oc v =
  assert (v >= 0);
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      output_byte oc byte;
      continue := false
    end
    else output_byte oc (byte lor 0x80)
  done

let read_varint ic =
  let rec go shift acc =
    let byte = input_byte ic in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1
let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let write_event oc prev_addr (e : Event.t) =
  let kind_bit = match e.kind with Event.Read -> 0 | Event.Write -> 1 in
  let size_field = if e.size >= 1 && e.size <= 30 then e.size else 31 in
  let flags = kind_bit lor (encode_source e.source lsl 1) lor (size_field lsl 3) in
  output_byte oc flags;
  if size_field = 31 then write_varint oc e.size;
  write_varint oc (zigzag (e.addr - prev_addr))

(* [None] on clean end-of-trace; a truncated event is corruption. *)
let read_event ic prev_addr =
  match input_byte ic with
  | exception End_of_file -> None
  | flags -> (
      try
        let kind = if flags land 1 = 0 then Event.Read else Event.Write in
        let source = decode_source ((flags lsr 1) land 3) in
        let size_field = flags lsr 3 in
        let size = if size_field = 31 then read_varint ic else size_field in
        if size < 1 then failwith "Trace_file: corrupt size";
        let addr = prev_addr + unzigzag (read_varint ic) in
        Some { Event.kind; source; addr; size }
      with End_of_file -> failwith "Trace_file: truncated event")

let record_to_file path f =
  let oc = open_out_bin path in
  output_string oc magic;
  let prev = ref 0 in
  let sink =
    Sink.of_fn (fun e ->
        write_event oc !prev e;
        prev := e.Event.addr)
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f sink)

let replay ic sink =
  let header = really_input_string ic (String.length magic) in
  if header <> magic then failwith "Trace_file: not a loclab trace";
  (* Decode straight into a packed batch and deliver at the pipeline's
     batch grain — order-preserving, one downstream dispatch per 256
     events instead of one per event. *)
  let batch = Event.Batch.create () in
  let cap = Event.Batch.capacity batch in
  let flush () =
    if batch.Event.Batch.len > 0 then begin
      sink.Sink.emit_packed_batch batch;
      Event.Batch.clear batch
    end
  in
  let prev = ref 0 in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match read_event ic !prev with
    | None -> continue := false
    | Some e ->
        prev := e.Event.addr;
        incr count;
        if batch.Event.Batch.len = cap then flush ();
        Event.Batch.push_event batch e
  done;
  flush ();
  !count

let replay_file path sink =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> replay ic sink)
