(** Memory-reference events.

    A trace is a sequence of events, each describing one data reference:
    a read or write of [size] bytes starting at byte address [addr].  The
    [source] records who issued the reference — the application proper, or
    the allocator while servicing [malloc]/[free] — so downstream
    consumers can attribute cache misses the way the paper does (direct
    allocator misses vs. indirect placement effects).

    The boxed record {!t} is the convenience form; the hot path carries
    events {e packed} as two native ints ({!Packed}) inside
    struct-of-arrays buffers ({!Batch}), so replaying a trace allocates
    nothing per event. *)

type kind =
  | Read
  | Write

type source =
  | App  (** Reference issued by application code. *)
  | Malloc  (** Reference issued inside the allocator's [malloc]. *)
  | Free  (** Reference issued inside the allocator's [free]. *)

type t = {
  kind : kind;
  source : source;
  addr : Addr.t;
  size : int;  (** Number of bytes referenced; at least 1. *)
}

val read : ?source:source -> Addr.t -> int -> t
(** [read addr size] is a read event.  [source] defaults to [App]. *)

val write : ?source:source -> Addr.t -> int -> t
(** [write addr size] is a write event.  [source] defaults to [App]. *)

val kind_to_string : kind -> string
val source_to_string : source -> string

val pp : Format.formatter -> t -> unit
(** Prints an event as e.g. [R app 0x00001000+4]. *)

type event = t
(** Alias for {!t}, usable where [t] is shadowed (inside {!Batch}). *)

(** The unboxed event codec: one event = (addr, meta), two native ints.
    The meta word is [size lsl 3  lor  kind lsl 2  lor  source] — the
    exact word {!Sink.Checksum} mixes per event, so checksums computed
    over packed and boxed deliveries agree bit for bit. *)
module Packed : sig
  val meta : kind:kind -> source:source -> size:int -> int
  (** Encode kind/source/size into a meta word.  Lossless for any
      [size >= 0] up to [max_int lsr 3] — far beyond any reference the
      simulators emit. *)

  val meta_of_event : t -> int

  val kind : int -> kind
  val source : int -> source
  val size : int -> int

  val ks : int -> int
  (** [ks meta] is the fused kind x source index [ki*3 + si] (ki: 0
      read / 1 write; si: 0 app / 1 malloc / 2 free) — the 6-cell
      counter layout shared by {!Sink.Counter} and the cache
      simulators. *)

  val to_event : addr:int -> meta:int -> t
end

(** A batch of packed events in struct-of-arrays form: two parallel
    [int array]s and a length.  This is the wire format of the hot
    pipeline — producers fill a preallocated batch and hand it to
    {!Sink.t.emit_packed_batch}; consumers read [addrs]/[metas] directly
    and must treat the batch as read-only (fanout shares one batch among
    all its consumers) and fully consumed by the time they return. *)
module Batch : sig
  type t = {
    mutable addrs : int array;
    mutable metas : int array;
    mutable len : int;  (** Events live at indices [0 .. len-1]. *)
  }

  val default_capacity : int
  (** 256 events — the pipeline's delivery grain. *)

  val create : ?capacity:int -> unit -> t
  (** An empty batch with room for [capacity] (default
      {!default_capacity}) events before it grows.
      @raise Invalid_argument if [capacity < 1]. *)

  val capacity : t -> int
  val length : t -> int
  val clear : t -> unit

  val push : t -> addr:int -> meta:int -> unit
  (** Appends one packed event, growing (by doubling) when full. *)

  val push_event : t -> event -> unit
  (** Appends a boxed event, packing it. *)

  val append : t -> t -> unit
  (** [append b src] appends all of [src]'s events to [b]. *)

  val get : t -> int -> event
  (** [get b i] decodes event [i] to a boxed record.
      @raise Invalid_argument if [i] is out of bounds. *)

  val of_events : event array -> int -> t
  (** [of_events buf len] packs the first [len] boxed events. *)

  val to_list : t -> event list
  val copy : t -> t
  val iter : (event -> unit) -> t -> unit
end
