(** Trace consumers.

    A sink receives every reference event of a simulation run.  Sinks are
    composable: [fanout] broadcasts one trace to several consumers (e.g. a
    family of cache simulators plus the page-fault simulator plus raw
    counters), exactly as the paper drives TYCHO and VMSIM from one
    execution-driven trace.

    Sinks consume events one at a time ([emit]), a boxed batch at a time
    ([emit_batch]), or — the hot path — a {e packed} batch at a time
    ([emit_packed_batch], over {!Event.Batch} struct-of-arrays buffers,
    no per-event allocation).  Any delivery must be observationally
    identical to emitting each of its events in order; the batch forms
    exist to amortise per-event closure dispatch and boxing.  [fanout]
    hands the whole batch to each consumer in turn, so consumers must not
    rely on being interleaved event-by-event with their siblings — none
    of the simulators do, as each owns disjoint state.  A packed batch is
    shared read-only among fanout siblings and is only valid for the
    duration of the call: consumers must fully consume (or copy) it
    before returning. *)

type t = {
  emit : Event.t -> unit;
  emit_batch : Event.t array -> int -> unit;
      (** [emit_batch buf len] consumes [buf.(0 .. len-1)], exactly as
          [len] successive [emit]s would.  Entries beyond [len] are
          garbage and must not be read. *)
  emit_packed_batch : Event.Batch.t -> unit;
      (** Consumes a packed batch, exactly as emitting each decoded
          event in order would.  The batch is read-only and owned by the
          producer; it may be reused the moment this call returns. *)
}

val null : t
(** Discards every event. *)

val of_fn : (Event.t -> unit) -> t
(** Wraps a plain function; batches (boxed and packed) are consumed by
    decoding and iterating it. *)

val make :
  emit:(Event.t -> unit) -> emit_batch:(Event.t array -> int -> unit) -> t
(** A sink with a specialised boxed-batch path.  Packed deliveries are
    decoded into a reused scratch array and handed to [emit_batch] as
    ONE call per packed batch, so batch-grain consumers observe the same
    delivery boundaries on either path. *)

val make_packed : emit_packed_batch:(Event.Batch.t -> unit) -> t
(** A natively packed consumer.  Boxed deliveries ([emit]/[emit_batch])
    are packed into a reused scratch batch and forwarded as one packed
    delivery each. *)

val emit_packed_batch : t -> Event.Batch.t -> unit
(** Delivers a packed batch — the one supported delivery entry point. *)

(** The boxed delivery shims, kept for external producers and the
    differential tests that pin them against the packed path.  Both
    must remain observationally identical to packing the same events
    into an {!Event.Batch.t} and delivering it via
    {!emit_packed_batch}; new code should do exactly that instead. *)
module Compat : sig
  val emit : t -> Event.t -> unit
  [@@deprecated "pack events into an Event.Batch and use Sink.emit_packed_batch"]
  (** Delivers one boxed event. *)

  val emit_batch : t -> Event.t array -> len:int -> unit
  [@@deprecated "pack events into an Event.Batch and use Sink.emit_packed_batch"]
  (** [emit_batch t buf ~len] delivers the first [len] events of
      [buf]. *)
end

val fanout : t list -> t
(** [fanout sinks] forwards each event to every sink, in order.  Batches
    are delivered whole to each sink in turn (see the module comment). *)

val filter : (Event.t -> bool) -> t -> t
(** [filter pred sink] forwards only events satisfying [pred].  Batches
    stay batches: matching events are compacted into one batch delivery
    downstream (order preserved, empty batches suppressed), so filtering
    does not degrade a consumer's batch path to per-event dispatch.
    Compaction happens in the filter's own scratch buffers — never in
    the caller's batch — so sibling fanout consumers sharing the
    incoming batch are unaffected. *)

(** Buffers events into a preallocated array and flushes them downstream
    with one [emit_batch] call, so a producer that emits word-at-a-time
    costs the downstream fanout one dispatch per batch instead of one
    per reference.  (The simulated machine now batches internally in
    packed form — see {!Sim_memory} — so this is mainly for external
    per-event producers.)  The owner must [flush] before anything reads
    downstream state. *)
module Batcher : sig
  type batcher

  val create : ?capacity:int -> t -> batcher
  (** [create downstream] with a buffer of [capacity] events (default
      256).  @raise Invalid_argument if [capacity < 1]. *)

  val sink : batcher -> t
  (** The buffering front: stores each event, auto-flushing when the
      buffer fills.  Batches (boxed or packed) arriving at the front are
      passed through (after draining the buffer, to preserve order). *)

  val flush : batcher -> unit
  (** Deliver any buffered events downstream now. *)
end

(** Running totals of a trace: how many references, reads, writes, bytes,
    broken down by source.  This supplies the [D] term of the paper's
    execution-time model. *)
module Counter : sig
  type counter

  val create : unit -> counter

  val sink : counter -> t
  (** Packed batches are tallied straight from the meta words — no
      [Event.t] is materialised on the hot path. *)

  val total : counter -> int
  (** Number of reference events observed. *)

  val reads : counter -> int
  val writes : counter -> int
  val bytes : counter -> int

  val by_source : counter -> Event.source -> int
  (** Events attributed to the given source. *)

  val reset : counter -> unit
end

(** Order-sensitive checksum of a reference trace (FNV-1a over every
    event's kind, source, address and size).  Two runs produce the same
    value iff they emitted the same events in the same order, so run
    artifacts persist it to detect simulation drift: a stored cell whose
    inputs (program, allocator, scale, seed) match but whose trace
    checksum differs from a fresh run exposes a behavioural change that
    the memoization would otherwise hide.  The per-event word this
    checksum mixes is exactly {!Event.Packed.meta}, so packed and boxed
    deliveries of the same trace produce bit-identical values. *)
module Checksum : sig
  type checksum

  val create : unit -> checksum
  val sink : checksum -> t

  val value : checksum -> int
  (** Checksum of everything observed so far, in [0, max_int]. *)
end

(** Bounded in-memory recording of a trace, useful in tests and for
    inspecting short runs.  Events are retained packed in preallocated
    int arrays (two stores per event, no list cells); packed batches are
    absorbed by blitting. *)
module Recorder : sig
  type recorder

  val create : ?capacity:int -> unit -> recorder
  (** [capacity] bounds how many events are retained (default 65536);
      later events are dropped but still counted.
      @raise Invalid_argument if [capacity < 0]. *)

  val sink : recorder -> t

  val events : recorder -> Event.t list
  (** Recorded events in emission order. *)

  val dropped : recorder -> int
  (** Number of events that arrived after capacity was reached. *)
end
