(** Trace consumers.

    A sink receives every reference event of a simulation run.  Sinks are
    composable: [fanout] broadcasts one trace to several consumers (e.g. a
    family of cache simulators plus the page-fault simulator plus raw
    counters), exactly as the paper drives TYCHO and VMSIM from one
    execution-driven trace.

    Sinks consume events one at a time ([emit]) or a batch at a time
    ([emit_batch]): a batch delivery must be observationally identical to
    emitting each of its events in order, and exists only to amortise the
    per-event closure dispatch on the hot path (one indirect call per
    batch per consumer instead of one per reference).  [fanout] hands the
    whole batch to each consumer in turn, so consumers must not rely on
    being interleaved event-by-event with their siblings — none of the
    simulators do, as each owns disjoint state. *)

type t = {
  emit : Event.t -> unit;
  emit_batch : Event.t array -> int -> unit;
      (** [emit_batch buf len] consumes [buf.(0 .. len-1)], exactly as
          [len] successive [emit]s would.  Entries beyond [len] are
          garbage and must not be read. *)
}

val null : t
(** Discards every event. *)

val of_fn : (Event.t -> unit) -> t
(** Wraps a plain function; batches are consumed by iterating it. *)

val make :
  emit:(Event.t -> unit) -> emit_batch:(Event.t array -> int -> unit) -> t
(** A sink with a specialised batch path (e.g. an internal tight loop
    that skips the per-event dispatch). *)

val emit_batch : t -> Event.t array -> len:int -> unit
(** [emit_batch t buf ~len] delivers the first [len] events of [buf]. *)

val fanout : t list -> t
(** [fanout sinks] forwards each event to every sink, in order.  Batches
    are delivered whole to each sink in turn (see the module comment). *)

val filter : (Event.t -> bool) -> t -> t
(** [filter pred sink] forwards only events satisfying [pred].  Batches
    stay batches: matching events are compacted into one [emit_batch]
    delivery downstream (order preserved, empty batches suppressed), so
    filtering does not degrade a consumer's batch path to per-event
    dispatch. *)

(** Buffers events into a preallocated array and flushes them downstream
    with one [emit_batch] call, so a producer that emits word-at-a-time
    (the simulated machine) costs the downstream fanout one dispatch per
    batch instead of one per reference.  The driver owns the flush:
    anything reading downstream state (counters, cache statistics) must
    [flush] first. *)
module Batcher : sig
  type batcher

  val create : ?capacity:int -> t -> batcher
  (** [create downstream] with a buffer of [capacity] events (default
      256).  @raise Invalid_argument if [capacity < 1]. *)

  val sink : batcher -> t
  (** The buffering front: stores each event, auto-flushing when the
      buffer fills.  Batches arriving at the front are passed through
      (after draining the buffer, to preserve order). *)

  val flush : batcher -> unit
  (** Deliver any buffered events downstream now. *)
end

(** Running totals of a trace: how many references, reads, writes, bytes,
    broken down by source.  This supplies the [D] term of the paper's
    execution-time model. *)
module Counter : sig
  type counter

  val create : unit -> counter
  val sink : counter -> t

  val total : counter -> int
  (** Number of reference events observed. *)

  val reads : counter -> int
  val writes : counter -> int
  val bytes : counter -> int

  val by_source : counter -> Event.source -> int
  (** Events attributed to the given source. *)

  val reset : counter -> unit
end

(** Order-sensitive checksum of a reference trace (FNV-1a over every
    event's kind, source, address and size).  Two runs produce the same
    value iff they emitted the same events in the same order, so run
    artifacts persist it to detect simulation drift: a stored cell whose
    inputs (program, allocator, scale, seed) match but whose trace
    checksum differs from a fresh run exposes a behavioural change that
    the memoization would otherwise hide. *)
module Checksum : sig
  type checksum

  val create : unit -> checksum
  val sink : checksum -> t

  val value : checksum -> int
  (** Checksum of everything observed so far, in [0, max_int]. *)
end

(** Bounded in-memory recording of a trace, useful in tests and for
    inspecting short runs. *)
module Recorder : sig
  type recorder

  val create : ?capacity:int -> unit -> recorder
  (** [capacity] bounds how many events are retained (default 65536);
      later events are dropped but still counted.
      @raise Invalid_argument if [capacity < 0]. *)

  val sink : recorder -> t

  val events : recorder -> Event.t list
  (** Recorded events in emission order. *)

  val dropped : recorder -> int
  (** Number of events that arrived after capacity was reached. *)
end
