(* Quickstart: build a simulated machine, run an allocator on it by
   hand, and watch the reference trace hit a cache.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 16 KB direct-mapped cache with 32-byte blocks (the paper's
     configuration) consuming the trace. *)
  let cache = Cachesim.Cache.create (Cachesim.Config.make (16 * 1024)) in
  let counter = Memsim.Sink.Counter.create () in
  let sink =
    Memsim.Sink.fanout
      [ Cachesim.Cache.sink cache; Memsim.Sink.Counter.sink counter ]
  in

  (* The simulated machine: traced memory + heap + instruction costs. *)
  let heap = Allocators.Heap.create ~sink () in

  (* Pick an allocator.  Try "firstfit", "bsd", "gnu-local", ... *)
  let alloc = Allocators.Registry.build "quickfit" heap in

  (* malloc / write / free, like a tiny C program. *)
  let xs =
    List.init 1000 (fun i -> Allocators.Allocator.malloc alloc (8 + (i mod 4 * 8)))
  in
  List.iter
    (fun a -> Memsim.Sim_memory.write_bytes (Allocators.Heap.mem heap) a 16)
    xs;
  List.iter (Allocators.Allocator.free alloc) xs;

  (* Allocate again: a good allocator re-uses the cache-warm memory. *)
  let ys = List.init 1000 (fun i -> Allocators.Allocator.malloc alloc (8 + (i mod 4 * 8))) in
  List.iter (Allocators.Allocator.free alloc) ys;

  (* The machine batches its packed trace internally: flush before
     reading anything downstream of the sink. *)
  Allocators.Heap.flush_trace heap;
  let stats = Cachesim.Cache.stats cache in
  let cost = Allocators.Heap.cost heap in
  Printf.printf "allocator        : %s\n" (Allocators.Allocator.name alloc);
  Printf.printf "trace events     : %d\n" (Memsim.Sink.Counter.total counter);
  Printf.printf "instructions     : %d (malloc %d, free %d)\n"
    (Allocators.Cost.total cost)
    (Allocators.Cost.malloc cost)
    (Allocators.Cost.free cost);
  Printf.printf "cache accesses   : %d\n" stats.Cachesim.Stats.accesses;
  Printf.printf "cache miss rate  : %.2f%%\n"
    (Cachesim.Stats.miss_rate_pct stats);
  Printf.printf "heap used (sbrk) : %d bytes\n" (Allocators.Heap.heap_used heap);
  (* LIFO freelists hand back the most recently freed block first. *)
  let reused =
    List.length (List.filter (fun y -> List.mem y xs) ys)
  in
  Printf.printf "reused addresses : %d / %d\n" reused (List.length ys)
